// Shard journals: the distributed study's persistence layer.
//
// A distributed campaign runs one shard worker per slice of the
// machine×app grid, each journaling into its own checkpoint file whose
// header tag carries a shard suffix (";shard=index/count/name") on top
// of the study's options tag. The suffix makes a shard journal
// unresumable into the wrong slice, while the shared base tag lets
// MergeCheckpoints fold a directory of shard journals back into one
// campaign: records are deduplicated first-record-wins (every record is
// a pure function of the options tag, so duplicates from work stealing
// are byte-identical), journals from a different campaign are rejected
// outright, and journals corrupted beyond a torn tail are quarantined
// with a per-file reason instead of failing the merge. Inspect is the
// triage tool under both: it classifies a journal as clean, torn-tail,
// or corrupt without rewriting a byte.

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ShardSpec identifies one shard's slice of a distributed study grid:
// the worker owning slice Index of Count processes every grid unit u
// with u % Count == Index. Name is the operator-facing label stamped on
// journals, span logs, and manifests.
type ShardSpec struct {
	Index int    `json:"index"`
	Count int    `json:"count"`
	Name  string `json:"name"`
}

// Sharded reports whether the spec names a real slice (Count > 1).
func (s ShardSpec) Sharded() bool { return s.Count > 1 }

// String formats the spec as "index/count (name)".
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d (%s)", s.Index, s.Count, s.Name) }

// shardTagSep separates the base options tag from the shard component.
const shardTagSep = ";shard="

// ShardTag appends the shard component to a base options tag. An
// unsharded spec returns the base unchanged, so single-process journals
// keep their PR-5 tags byte-identical.
func ShardTag(base string, s ShardSpec) string {
	if !s.Sharded() {
		return base
	}
	return fmt.Sprintf("%s%s%d/%d/%s", base, shardTagSep, s.Index, s.Count, s.Name)
}

// SplitShardTag splits a journal tag into its base options tag and
// shard component. Tags without a well-formed shard suffix come back
// whole with sharded == false.
func SplitShardTag(tag string) (base string, spec ShardSpec, sharded bool) {
	i := strings.LastIndex(tag, shardTagSep)
	if i < 0 {
		return tag, ShardSpec{}, false
	}
	parts := strings.SplitN(tag[i+len(shardTagSep):], "/", 3)
	if len(parts) != 3 {
		return tag, ShardSpec{}, false
	}
	idx, err1 := strconv.Atoi(parts[0])
	cnt, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || cnt < 2 || idx < 0 || idx >= cnt {
		return tag, ShardSpec{}, false
	}
	return tag[:i], ShardSpec{Index: idx, Count: cnt, Name: parts[2]}, true
}

// JournalStatus classifies a journal's integrity for triage.
type JournalStatus string

const (
	// JournalClean means every record line decoded and checksummed.
	JournalClean JournalStatus = "clean"
	// JournalTornTail means the journal ends in an undecodable line with
	// nothing decodable after it — the signature of a crash mid-append.
	// OpenCheckpoint truncates this back to the good prefix on resume.
	JournalTornTail JournalStatus = "torn-tail"
	// JournalCorrupt means a bad record line is followed by records that
	// still decode — flipped bits in the middle of the file, not a torn
	// tail. MergeCheckpoints quarantines such a journal: the stranded
	// records may be fine, but the break means the file can no longer be
	// trusted as an append-only history.
	JournalCorrupt JournalStatus = "corrupt"
)

// JournalInfo is a checkpoint journal's inspection report: everything an
// operator needs to triage a dead shard without reading bytes.
type JournalInfo struct {
	Path    string        `json:"path"`
	Format  string        `json:"format"`
	Version int           `json:"version"`
	Tag     string        `json:"tag"`
	BaseTag string        `json:"base_tag"`
	Shard   ShardSpec     `json:"shard,omitempty"`
	Sharded bool          `json:"sharded"`
	Records int           `json:"records"`
	Probes  int           `json:"probes"`
	Cells   int           `json:"cells"`
	LastKey string        `json:"last_key,omitempty"` // "stage key" of the last trusted record
	Status  JournalStatus `json:"status"`
	// BadLine is the 1-based line number of the first undecodable record
	// line (0 when clean); Stranded counts records that still decode
	// after it.
	BadLine  int `json:"bad_line,omitempty"`
	Stranded int `json:"stranded,omitempty"`
}

// Inspect reads a checkpoint journal without modifying it and reports
// its header, trusted record counts, and integrity status. It errors
// only when the file is unreadable or its header is not a checkpoint
// header at all; wrong versions and foreign tags are reported in the
// info, not rejected — inspection is for triage, policy belongs to
// OpenCheckpoint and MergeCheckpoints.
func Inspect(path string) (*JournalInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	scan, err := scanJournal(raw)
	if err != nil {
		return nil, fmt.Errorf("persist: %s is not a checkpoint file", path)
	}
	info := &JournalInfo{
		Path:    path,
		Format:  scan.hdr.Format,
		Version: scan.hdr.Version,
		Tag:     scan.hdr.Tag,
		Records: len(scan.records),
		Status:  JournalClean,
	}
	info.BaseTag, info.Shard, info.Sharded = SplitShardTag(scan.hdr.Tag)
	for _, rec := range scan.records {
		switch rec.Stage {
		case StageProbe:
			info.Probes++
		case StageCell:
			info.Cells++
		}
		info.LastKey = rec.Stage + " " + rec.Key
	}
	if scan.badLine > 0 {
		info.BadLine = scan.badLine
		info.Stranded = scan.stranded
		if scan.stranded > 0 {
			info.Status = JournalCorrupt
		} else {
			info.Status = JournalTornTail
		}
	}
	return info, nil
}

// Quarantined names one shard journal a merge excluded, and why.
type Quarantined struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// ShardJournal summarizes one journal a merge accepted.
type ShardJournal struct {
	Path    string    `json:"path"`
	Shard   ShardSpec `json:"shard,omitempty"`
	Sharded bool      `json:"sharded"`
	Records int       `json:"records"`
}

// MergeResult is the folded view of a directory of shard journals.
type MergeResult struct {
	// Records is the deduplicated union, first-record-wins in sorted
	// journal-path order (in-file order preserved within a journal).
	Records []CellRecord
	// Journals lists the accepted journals in merge order.
	Journals []ShardJournal
	// Quarantined lists the journals the merge excluded: corrupt beyond
	// a torn tail, unreadable, or schema-incompatible. Their units are
	// simply absent from Records — a merge-resume recomputes them.
	Quarantined []Quarantined
	// ShardCount is the campaign's shard count (0 when only unsharded
	// journals were found); MissingShards lists slice indexes no
	// accepted journal covers.
	ShardCount    int
	MissingShards []int
}

// MergeCheckpoints folds every "*.ckpt" journal under dir into one
// campaign view. Policy:
//
//   - A journal whose base tag differs from baseTag is a hard error:
//     its records were produced under different options — a different
//     grid, ablation, fault plan, or retry/timeout budget — and merging
//     them would splice incompatible experiments into one table.
//   - Sharded journals must agree on the shard count, and indexes must
//     be in range; disagreement is a hard error for the same reason.
//     Duplicate indexes are fine — a work-stealing journal covers the
//     same slice as its victim, and dedup makes the overlap harmless.
//   - A journal that is unreadable, not a checkpoint, from another
//     format version, or corrupt beyond a torn tail is quarantined with
//     a per-file reason rather than failing the merge; a torn tail
//     costs only the torn line (the good prefix merges normally).
//   - Records are deduplicated first-record-wins. Every record is a
//     pure function of the base tag, so whichever copy wins, the bytes
//     are the same.
func MergeCheckpoints(dir, baseTag string) (*MergeResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("persist: no shard journals (*.ckpt) under %s", dir)
	}
	sort.Strings(paths)

	out := &MergeResult{}
	seen := make(map[string]bool)
	covered := make(map[int]bool)
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			out.Quarantined = append(out.Quarantined, Quarantined{Path: path, Reason: err.Error()})
			continue
		}
		scan, err := scanJournal(raw)
		if err != nil {
			out.Quarantined = append(out.Quarantined, Quarantined{Path: path, Reason: "not a checkpoint journal"})
			continue
		}
		if scan.hdr.Format != formatCheckpoint {
			out.Quarantined = append(out.Quarantined, Quarantined{
				Path: path, Reason: fmt.Sprintf("holds %q, want %q", scan.hdr.Format, formatCheckpoint)})
			continue
		}
		if scan.hdr.Version != FormatVersion {
			out.Quarantined = append(out.Quarantined, Quarantined{
				Path: path, Reason: fmt.Sprintf("checkpoint version %d, this build reads %d", scan.hdr.Version, FormatVersion)})
			continue
		}
		if scan.badLine > 0 && scan.stranded > 0 {
			out.Quarantined = append(out.Quarantined, Quarantined{
				Path: path, Reason: fmt.Sprintf("corrupt record at line %d with %d intact records stranded after it", scan.badLine, scan.stranded)})
			continue
		}
		base, spec, sharded := SplitShardTag(scan.hdr.Tag)
		if base != baseTag {
			return nil, fmt.Errorf("persist: shard journal %s was written by a study with different options (tag %q, want %q) — refusing to merge mixed campaigns", path, base, baseTag)
		}
		if sharded {
			if out.ShardCount == 0 {
				out.ShardCount = spec.Count
			}
			if spec.Count != out.ShardCount {
				return nil, fmt.Errorf("persist: shard journal %s slices the grid %d ways but %s slices it %d ways — refusing to merge mixed campaigns",
					path, spec.Count, out.Journals[0].Path, out.ShardCount)
			}
			covered[spec.Index] = true
		}
		out.Journals = append(out.Journals, ShardJournal{Path: path, Shard: spec, Sharded: sharded, Records: len(scan.records)})
		for _, rec := range scan.records {
			id := rec.Stage + "|" + rec.Key
			if seen[id] {
				continue
			}
			seen[id] = true
			out.Records = append(out.Records, rec)
		}
	}
	if len(out.Journals) == 0 {
		return nil, fmt.Errorf("persist: every journal under %s was quarantined (%d files)", dir, len(out.Quarantined))
	}
	for i := 0; i < out.ShardCount; i++ {
		if !covered[i] {
			out.MissingShards = append(out.MissingShards, i)
		}
	}
	return out, nil
}

// SeedCheckpoint builds a checkpoint preloaded with records — the merged
// view of a directory of shard journals. With an empty path the journal
// is memory-only: Lookup serves the seeds and Append records new units
// without touching disk, which is what a merge-resume wants (the shard
// journals stay the durable artifact). With a path, the seeded journal
// is written out atomically and later appends persist as usual.
func SeedCheckpoint(path, tag string, records []CellRecord) (*Checkpoint, error) {
	index := make(map[string]int, len(records))
	var kept []CellRecord
	for _, rec := range records {
		if rec.Stage == "" || rec.Key == "" {
			return nil, fmt.Errorf("persist: seed record needs a stage and a key")
		}
		if _, dup := index[rec.Stage+"|"+rec.Key]; dup {
			continue
		}
		index[rec.Stage+"|"+rec.Key] = len(kept)
		kept = append(kept, rec)
	}
	var data []byte
	if path != "" {
		hdr, err := encodeHeader(tag)
		if err != nil {
			return nil, err
		}
		data = hdr
		for _, rec := range kept {
			line, err := encodeRecord(rec)
			if err != nil {
				return nil, err
			}
			data = append(append(data, line...), '\n')
		}
		if err := writeAtomic(path, data); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	return &Checkpoint{path: path, tag: tag, index: index, records: kept, data: data}, nil
}
