// Package persist serializes the study's expensive artifacts — traces and
// probe results — as versioned JSON files, so the paper's workflow economy
// holds here too: trace once per application on the base system, probe
// once per target machine, and reuse both for every later prediction
// (the paper stresses tracing "is only required once per application").
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/trace"
)

// FormatVersion guards files against schema drift: files written by a
// different major version are rejected rather than misread.
const FormatVersion = 1

// envelope wraps any payload with identification and version.
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

const (
	formatTrace  = "hpcmetrics-trace"
	formatProbes = "hpcmetrics-probes"
)

func save(path, format string, payload any) error {
	raw, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encoding %s: %w", format, err)
	}
	out, err := json.MarshalIndent(envelope{Format: format, Version: FormatVersion, Payload: raw}, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := writeAtomic(path, append(out, '\n')); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// writeAtomic writes data to path via a temp file and rename: a reader
// (or a crash mid write) sees either the old complete file or the new
// complete file, never a truncated envelope. The temp file lives in the
// destination directory so the rename stays on one filesystem.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, err = tmp.Write(data)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(name, 0o644)
	}
	if err == nil {
		err = os.Rename(name, path)
	}
	if err != nil {
		if rerr := os.Remove(name); rerr != nil {
			err = errors.Join(err, rerr)
		}
	}
	return err
}

func load(path, format string, payload any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("persist: %s is not a %s file: %w", path, format, err)
	}
	if env.Format != format {
		return fmt.Errorf("persist: %s holds %q, want %q", path, env.Format, format)
	}
	if env.Version != FormatVersion {
		return fmt.Errorf("persist: %s is format version %d, this build reads %d", path, env.Version, FormatVersion)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("persist: decoding %s: %w", path, err)
	}
	return nil
}

// SaveTrace writes an application trace.
func SaveTrace(path string, tr *trace.Trace) error {
	if tr == nil {
		return fmt.Errorf("persist: nil trace")
	}
	return save(path, formatTrace, tr)
}

// LoadTrace reads an application trace.
func LoadTrace(path string) (*trace.Trace, error) {
	var tr trace.Trace
	if err := load(path, formatTrace, &tr); err != nil {
		return nil, err
	}
	if len(tr.Blocks) == 0 {
		return nil, fmt.Errorf("persist: %s holds an empty trace", path)
	}
	return &tr, nil
}

// SaveProbes writes a machine's probe results.
func SaveProbes(path string, pr *probes.Results) error {
	if pr == nil {
		return fmt.Errorf("persist: nil probe results")
	}
	return save(path, formatProbes, pr)
}

// LoadProbes reads a machine's probe results.
func LoadProbes(path string) (*probes.Results, error) {
	var pr probes.Results
	if err := load(path, formatProbes, &pr); err != nil {
		return nil, err
	}
	if pr.Machine == "" {
		return nil, fmt.Errorf("persist: %s holds unnamed probe results", path)
	}
	return &pr, nil
}
