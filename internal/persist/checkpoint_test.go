package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func ckptPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "study.ckpt")
}

func mustAppend(t *testing.T, c *Checkpoint, rec CellRecord) {
	t.Helper()
	if err := c.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := ckptPath(t)
	c, err := CreateCheckpoint(path, "tag-a")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, c, CellRecord{Stage: StageProbe, Key: "ARL_Opteron", BaseSeconds: 0})
	mustAppend(t, c, CellRecord{
		Stage: StageCell, Key: "avus-standard@64",
		BaseSeconds: 1234.5678901234567,
		Observed:    map[string]float64{"ARL_Opteron": 99.25},
		Skips:       map[string]CheckpointSkip{"MHPCC_P3": {Reason: "error", Detail: "boom", Attempts: 3}},
	})

	r, err := OpenCheckpoint(path, "tag-a")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("reopened Len=%d Dropped=%d, want 2, 0", r.Len(), r.Dropped())
	}
	rec, ok := r.Lookup(StageCell, "avus-standard@64")
	if !ok {
		t.Fatal("cell record missing after reopen")
	}
	// encoding/json round-trips float64 exactly; resumed results must be
	// bit-identical.
	if rec.BaseSeconds != 1234.5678901234567 || rec.Observed["ARL_Opteron"] != 99.25 {
		t.Errorf("numeric fields did not round-trip exactly: %+v", rec)
	}
	if s := rec.Skips["MHPCC_P3"]; s.Reason != "error" || s.Attempts != 3 {
		t.Errorf("skip did not round-trip: %+v", s)
	}
	if _, ok := r.Lookup(StageProbe, "nowhere"); ok {
		t.Error("Lookup invented a record")
	}
}

// TestCheckpointTornTailTruncated: a crash mid-line leaves a torn tail;
// reopening keeps the good prefix, reports the drop, and rewrites the
// file clean so the corruption cannot resurface.
func TestCheckpointTornTailTruncated(t *testing.T) {
	path := ckptPath(t)
	c, err := CreateCheckpoint(path, "")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, c, CellRecord{Stage: StageProbe, Key: "good"})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, raw...), []byte(`{"record":{"stage":"cell","key":"to`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCheckpoint(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 1, 1", r.Len(), r.Dropped())
	}
	if _, ok := r.Lookup(StageProbe, "good"); !ok {
		t.Error("good prefix record lost")
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, raw) {
		t.Error("reopen did not rewrite the journal back to its good prefix")
	}
}

// TestCheckpointBadChecksumDropped: a record whose payload no longer
// matches its CRC — flipped bits — is discarded along with everything
// after it.
func TestCheckpointBadChecksumDropped(t *testing.T) {
	path := ckptPath(t)
	c, err := CreateCheckpoint(path, "")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, c, CellRecord{Stage: StageProbe, Key: "first"})
	mustAppend(t, c, CellRecord{Stage: StageCell, Key: "second"})
	mustAppend(t, c, CellRecord{Stage: StageCell, Key: "third"})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the second record without touching its CRC.
	mangled := strings.Replace(string(raw), `"key":"second"`, `"key":"seconX"`, 1)
	if mangled == string(raw) {
		t.Fatal("test setup: second record not found in journal")
	}
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCheckpoint(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 1 kept and the rest dropped", r.Len(), r.Dropped())
	}
	if _, ok := r.Lookup(StageCell, "third"); ok {
		t.Error("record after the corrupt line survived; trust must end at the first bad line")
	}
}

func TestCheckpointHeaderGuards(t *testing.T) {
	t.Run("wrong-version", func(t *testing.T) {
		path := ckptPath(t)
		if err := os.WriteFile(path, []byte(`{"format":"hpcmetrics-checkpoint","version":999}`+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, ""); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("wrong version opened with err=%v, want version error", err)
		}
	})
	t.Run("wrong-format", func(t *testing.T) {
		path := ckptPath(t)
		if err := os.WriteFile(path, []byte(`{"format":"something-else","version":1}`+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, ""); err == nil {
			t.Error("wrong format opened cleanly")
		}
	})
	t.Run("not-json", func(t *testing.T) {
		path := ckptPath(t)
		if err := os.WriteFile(path, []byte("not a checkpoint\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, ""); err == nil {
			t.Error("garbage header opened cleanly")
		}
	})
	t.Run("tag-mismatch", func(t *testing.T) {
		path := ckptPath(t)
		if _, err := CreateCheckpoint(path, "apps=a;targets=x"); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, "apps=b;targets=y"); err == nil || !strings.Contains(err.Error(), "different options") {
			t.Errorf("tag mismatch opened with err=%v, want options error", err)
		}
	})
	t.Run("missing-file-creates", func(t *testing.T) {
		path := ckptPath(t)
		r, err := OpenCheckpoint(path, "t")
		if err != nil || r.Len() != 0 {
			t.Fatalf("OpenCheckpoint on missing file = (%v, Len %d), want fresh journal", err, r.Len())
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("fresh journal not written: %v", err)
		}
	})
}

func TestCheckpointDuplicateFirstWins(t *testing.T) {
	c, err := CreateCheckpoint(ckptPath(t), "")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, c, CellRecord{Stage: StageCell, Key: "k", BaseSeconds: 1})
	mustAppend(t, c, CellRecord{Stage: StageCell, Key: "k", BaseSeconds: 2})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate append, want 1", c.Len())
	}
	rec, _ := c.Lookup(StageCell, "k")
	if rec.BaseSeconds != 1 {
		t.Errorf("duplicate append replaced the first record: %+v", rec)
	}
}

// TestCheckpointConcurrentAppendAndOpen races writers against readers of
// the same path: writeAtomic's rename means a concurrent open sees a
// complete journal prefix, never a partial record.
func TestCheckpointConcurrentAppendAndOpen(t *testing.T) {
	path := ckptPath(t)
	c, err := CreateCheckpoint(path, "race")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := string(rune('a'+w)) + "-" + string(rune('0'+i%10))
				if err := c.Append(CellRecord{Stage: StageCell, Key: key, BaseSeconds: float64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rc, err := OpenCheckpoint(path, "race")
				if err != nil {
					t.Error(err)
					return
				}
				if rc.Dropped() != 0 {
					t.Errorf("concurrent reader saw %d corrupt lines; atomic rename must prevent torn reads", rc.Dropped())
					return
				}
			}
		}()
	}
	wg.Wait()

	final, err := OpenCheckpoint(path, "race")
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != 40 || final.Dropped() != 0 {
		t.Errorf("final journal Len=%d Dropped=%d, want 40 distinct keys, 0 dropped", final.Len(), final.Dropped())
	}
}

func TestCheckpointNilSafe(t *testing.T) {
	var c *Checkpoint
	if err := c.Append(CellRecord{Stage: StageCell, Key: "k"}); err != nil {
		t.Errorf("nil Append = %v, want nil", err)
	}
	if _, ok := c.Lookup(StageCell, "k"); ok {
		t.Error("nil Lookup found a record")
	}
	if c.Len() != 0 || c.Dropped() != 0 || c.Path() != "" {
		t.Error("nil accessors must read zero values")
	}
}

func TestCheckpointAppendValidates(t *testing.T) {
	c, err := CreateCheckpoint(ckptPath(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(CellRecord{Stage: StageCell}); err == nil {
		t.Error("Append accepted a record without a key")
	}
	if err := c.Append(CellRecord{Key: "k"}); err == nil {
		t.Error("Append accepted a record without a stage")
	}
}
