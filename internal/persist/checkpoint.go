// Checkpoint format: the study's crash-recovery journal.
//
// A checkpoint is a line-delimited file — one JSON header line followed
// by one JSON line per completed unit of study work (a probed machine or
// an observed cell). Each record line carries a CRC-32 checksum of its
// payload, so a file torn by a crash or a concurrent reader is detected
// at the first bad line and truncated back to the good prefix rather
// than misread; the header carries the same format/version guard as the
// rest of the package plus a tag fingerprinting the study options, so a
// resume against a checkpoint from a different study fails loudly.
// Every write goes through writeAtomic: a reader sees either the old
// complete journal or the new one, never a half-appended record.

package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/trace"
)

const formatCheckpoint = "hpcmetrics-checkpoint"

// Record stages: a probed machine, or a fully observed cell.
const (
	StageProbe = "probe"
	StageCell  = "cell"
)

// CheckpointSkip mirrors study.Skip without importing internal/study
// (study imports persist, not the other way around).
type CheckpointSkip struct {
	Reason   string `json:"reason"`
	Detail   string `json:"detail,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// CellRecord is one completed unit of study work. Stage selects which
// fields are meaningful: StageProbe carries Probes for the machine named
// by Key; StageCell carries the cell's base time, trace, per-target
// observations, and skips. A cell that failed outright (nil Trace, only
// Skips) is still a completed unit — resuming must not retry it.
type CellRecord struct {
	Stage       string                    `json:"stage"`
	Key         string                    `json:"key"`
	Probes      *probes.Results           `json:"probes,omitempty"`
	BaseSeconds float64                   `json:"base_seconds,omitempty"`
	Trace       *trace.Trace              `json:"trace,omitempty"`
	Observed    map[string]float64        `json:"observed,omitempty"`
	Skips       map[string]CheckpointSkip `json:"skips,omitempty"`
}

// checkpointHeader is the journal's first line.
type checkpointHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Tag     string `json:"tag,omitempty"`
}

// recordLine wraps one record with its checksum.
type recordLine struct {
	Record json.RawMessage `json:"record"`
	CRC    string          `json:"crc"`
}

// Checkpoint is an append-only journal of completed study work. All
// methods are safe for concurrent use and nil-safe: a nil *Checkpoint
// (no checkpointing configured) looks up nothing and appends nowhere,
// so call sites stay unconditional.
type Checkpoint struct {
	path string
	tag  string

	mu      sync.Mutex
	data    []byte         // guarded by mu; the serialized journal
	records []CellRecord   // guarded by mu
	index   map[string]int // guarded by mu; stage|key → records index
	dropped int            // guarded by mu; torn/corrupt lines discarded on open
}

// CreateCheckpoint starts a fresh journal at path, replacing any
// existing file.
func CreateCheckpoint(path, tag string) (*Checkpoint, error) {
	data, err := encodeHeader(tag)
	if err != nil {
		return nil, err
	}
	if err := writeAtomic(path, data); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &Checkpoint{path: path, tag: tag, data: data, index: make(map[string]int)}, nil
}

// encodeHeader serializes the journal's header line.
func encodeHeader(tag string) ([]byte, error) {
	hdr, err := json.Marshal(checkpointHeader{Format: formatCheckpoint, Version: FormatVersion, Tag: tag})
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return append(hdr, '\n'), nil
}

// journalScan is a parsed journal: the header, the trustworthy record
// prefix, and what (if anything) broke the trust. Trust ends at the
// first undecodable record line; Stranded counts record lines that still
// decode *after* that point, which is how mid-file corruption (flipped
// bits with intact records beyond) is told apart from a torn tail (a
// crash mid-append leaves nothing decodable after the break).
type journalScan struct {
	hdr      checkpointHeader
	records  []CellRecord
	goodData []byte // header + good-prefix record lines, newline-terminated
	badLine  int    // 1-based line number of the first bad record line; 0 = clean
	stranded int    // decodable record lines after badLine
}

// scanJournal parses raw journal bytes. It errors only when the header
// line is not JSON at all; format/version/tag policy stays with callers.
func scanJournal(raw []byte) (journalScan, error) {
	lines := bytes.Split(raw, []byte("\n"))
	var s journalScan
	if len(lines) == 0 || json.Unmarshal(lines[0], &s.hdr) != nil {
		return s, fmt.Errorf("no checkpoint header")
	}
	s.goodData = append(append([]byte{}, lines[0]...), '\n')
	for i, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, ok := decodeRecord(line)
		switch {
		case !ok && s.badLine == 0:
			s.badLine = i + 2 // 1-based; the header is line 1
		case !ok:
		case s.badLine != 0:
			s.stranded++
		default:
			s.records = append(s.records, rec)
			s.goodData = append(append(s.goodData, line...), '\n')
		}
	}
	return s, nil
}

// OpenCheckpoint loads the journal at path for resuming. A missing file
// starts a fresh journal; a header with the wrong format, version, or
// tag is an error; a torn or corrupt record truncates the journal back
// to its good prefix (the file is rewritten clean). Dropped reports
// whether that happened. Use Inspect to triage a journal — including
// telling a torn tail from mid-file corruption — without rewriting it.
func OpenCheckpoint(path, tag string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return CreateCheckpoint(path, tag)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	scan, err := scanJournal(raw)
	if err != nil {
		return nil, fmt.Errorf("persist: %s is not a checkpoint file", path)
	}
	hdr := scan.hdr
	if hdr.Format != formatCheckpoint {
		return nil, fmt.Errorf("persist: %s holds %q, want %q", path, hdr.Format, formatCheckpoint)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("persist: %s is checkpoint version %d, this build reads %d", path, hdr.Version, FormatVersion)
	}
	if hdr.Tag != tag {
		return nil, fmt.Errorf("persist: checkpoint %s was written by a study with different options (tag %q, want %q)",
			path, hdr.Tag, tag)
	}
	index := make(map[string]int, len(scan.records))
	for i, rec := range scan.records {
		index[rec.Stage+"|"+rec.Key] = i
	}
	var dropped int
	if scan.badLine > 0 {
		// Torn tail or flipped bits: everything from the first bad line
		// on is untrustworthy. Rewrite the journal back to its good
		// prefix so the corruption cannot resurface.
		dropped = 1
		if err := writeAtomic(path, scan.goodData); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	return &Checkpoint{path: path, tag: tag, data: scan.goodData, records: scan.records, index: index, dropped: dropped}, nil
}

// decodeRecord parses one journal line, verifying its checksum.
func decodeRecord(line []byte) (CellRecord, bool) {
	var rl recordLine
	if json.Unmarshal(line, &rl) != nil || rl.Record == nil {
		return CellRecord{}, false
	}
	if fmt.Sprintf("%08x", crc32.ChecksumIEEE(rl.Record)) != rl.CRC {
		return CellRecord{}, false
	}
	var rec CellRecord
	if json.Unmarshal(rl.Record, &rec) != nil || rec.Stage == "" || rec.Key == "" {
		return CellRecord{}, false
	}
	return rec, true
}

// Append journals one completed unit and rewrites the file atomically.
// Appending a (stage, key) that is already journaled replaces nothing —
// the first record wins, matching Lookup. A memory-only checkpoint
// (empty path, see SeedCheckpoint) records the unit without touching
// disk.
func (c *Checkpoint) Append(rec CellRecord) error {
	if c == nil {
		return nil
	}
	if rec.Stage == "" || rec.Key == "" {
		return fmt.Errorf("persist: checkpoint record needs a stage and a key")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.index[rec.Stage+"|"+rec.Key]; !dup {
		c.index[rec.Stage+"|"+rec.Key] = len(c.records)
		c.records = append(c.records, rec)
		if c.path != "" {
			line, err := encodeRecord(rec)
			if err != nil {
				return err
			}
			c.data = append(append(c.data, line...), '\n')
		}
	}
	if c.path == "" {
		return nil
	}
	if err := writeAtomic(c.path, c.data); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// encodeRecord serializes one record as a checksummed journal line.
func encodeRecord(rec CellRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding checkpoint record: %w", err)
	}
	line, err := json.Marshal(recordLine{Record: payload, CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))})
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return line, nil
}

// Lookup returns the journaled record for one (stage, key), if any.
func (c *Checkpoint) Lookup(stage, key string) (CellRecord, bool) {
	if c == nil {
		return CellRecord{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[stage+"|"+key]
	if !ok {
		return CellRecord{}, false
	}
	return c.records[i], true
}

// Len reports how many units are journaled.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Dropped reports how many corrupt lines OpenCheckpoint discarded.
func (c *Checkpoint) Dropped() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Path returns the journal's file path, or "" for a nil checkpoint.
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return c.path
}
