package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hpcmetrics/internal/access"
	"hpcmetrics/internal/netsim"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/trace"
)

func sampleTrace() *trace.Trace {
	return &trace.Trace{
		App: "avus", Case: "standard", Procs: 64, BaseSystem: "NAVO_690",
		Blocks: []trace.BlockTrace{
			{
				Name: "flux", Iters: 1e7, FlopsPerIter: 200, MemOpsPerIter: 22,
				Mix:             access.Mix{Unit: 0.5, Short: 0.2, Random: 0.3},
				WorkingSetBytes: 64 << 20, ILPLimited: false,
			},
			{
				Name: "ssor", Iters: 5e6, FlopsPerIter: 56, MemOpsPerIter: 14,
				Mix:             access.Mix{Unit: 0.8, Short: 0.1, Random: 0.1},
				WorkingSetBytes: 32 << 20, ILPLimited: true,
			},
		},
		Comm: []netsim.Event{
			{Op: netsim.OpPointToPoint, Bytes: 4096, Count: 1000},
			{Op: netsim.OpAllReduce, Bytes: 8, Count: 600},
		},
	}
}

func sampleProbes() *probes.Results {
	return &probes.Results{
		Machine:           "ARL_Opteron",
		HPLFlopsPerSec:    4.2e9,
		StreamBytesPerSec: 2.7e9,
		GUPSRefsPerSec:    2.8e7,
		MAPSUnit: probes.Curve{
			SizesBytes: []int64{8 << 10, 128 << 20},
			RefsPerSec: []float64{4e9, 3e8},
		},
		MAPSRandom: probes.Curve{
			SizesBytes: []int64{8 << 10, 128 << 20},
			RefsPerSec: []float64{1e9, 2.8e7},
		},
		Net: probes.NetResults{
			LatencySeconds: 8e-6, BandwidthBytesPerSec: 2.45e8, AllReduce8At64: 7.8e-5,
		},
		OverlapFraction: 0.8,
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	want := sampleTrace()
	if err := SaveTrace(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestProbesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probes.json")
	want := sampleProbes()
	if err := SaveProbes(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProbes(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestFormatConfusionRejected(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	if err := SaveTrace(tracePath, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProbes(tracePath); err == nil {
		t.Fatal("probe loader accepted a trace file")
	} else if !strings.Contains(err.Error(), "hpcmetrics-trace") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	data := `{"format":"hpcmetrics-trace","version":999,"payload":{}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestCorruptFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestEmptyPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "empty-trace.json")
	if err := os.WriteFile(p1,
		[]byte(`{"format":"hpcmetrics-trace","version":1,"payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(p1); err == nil {
		t.Fatal("empty trace accepted")
	}
	p2 := filepath.Join(dir, "empty-probes.json")
	if err := os.WriteFile(p2,
		[]byte(`{"format":"hpcmetrics-probes","version":1,"payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProbes(p2); err == nil {
		t.Fatal("empty probes accepted")
	}
}

func TestNilInputsRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := SaveTrace(path, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
	if err := SaveProbes(path, nil); err == nil {
		t.Fatal("nil probes accepted")
	}
}

func TestMissingFile(t *testing.T) {
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTruncatedFileRejected simulates the failure the atomic save
// prevents: a file cut off mid-write must be rejected with the
// format-identifying error, not half-parsed.
func TestTruncatedFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveTrace(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err == nil {
		t.Fatal("truncated file accepted")
	} else if !strings.Contains(err.Error(), "is not a") {
		t.Fatalf("truncation error should identify the format check: %v", err)
	}
}

// TestSaveLeavesNoTempFiles: the rename consumes the temp file; failure
// paths remove it. After a save the directory holds exactly the artifact.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "probes.json")
	for i := 0; i < 3; i++ {
		if err := SaveProbes(path, sampleProbes()); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "probes.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
}

// TestConcurrentSaveLoad: with write-then-rename, a reader racing a
// writer sees a complete envelope on every read — never a partial file.
func TestConcurrentSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr := sampleTrace()
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := SaveTrace(path, tr); err != nil {
				t.Errorf("save %d: %v", i, err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		if _, err := LoadTrace(path); err != nil {
			t.Fatalf("reader saw a partial file: %v", err)
		}
	}
}
