package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShardTagRoundTrip(t *testing.T) {
	base := "apps=all;targets=all;noise=true"
	spec := ShardSpec{Index: 2, Count: 5, Name: "shard2"}
	tag := ShardTag(base, spec)
	if !strings.HasPrefix(tag, base) {
		t.Fatalf("ShardTag(%q) = %q, want base prefix", base, tag)
	}
	gotBase, gotSpec, sharded := SplitShardTag(tag)
	if !sharded || gotBase != base || gotSpec != spec {
		t.Fatalf("SplitShardTag(%q) = %q, %+v, %t", tag, gotBase, gotSpec, sharded)
	}
}

func TestShardTagUnshardedPassthrough(t *testing.T) {
	base := "apps=all;targets=all"
	if got := ShardTag(base, ShardSpec{Count: 1}); got != base {
		t.Fatalf("unsharded ShardTag = %q, want %q", got, base)
	}
	gotBase, _, sharded := SplitShardTag(base)
	if sharded || gotBase != base {
		t.Fatalf("SplitShardTag(%q) = %q, sharded=%t", base, gotBase, sharded)
	}
}

func TestSplitShardTagMalformed(t *testing.T) {
	for _, tag := range []string{
		"base;shard=",
		"base;shard=1/2",    // no name
		"base;shard=x/2/a",  // non-numeric index
		"base;shard=1/x/a",  // non-numeric count
		"base;shard=2/2/a",  // index out of range
		"base;shard=0/1/a",  // count < 2
		"base;shard=-1/3/a", // negative index
	} {
		gotBase, _, sharded := SplitShardTag(tag)
		if sharded {
			t.Errorf("SplitShardTag(%q) claimed a shard suffix", tag)
		}
		if gotBase != tag {
			t.Errorf("SplitShardTag(%q) base = %q, want whole tag back", tag, gotBase)
		}
	}
}

// writeJournal creates a journal with the given tag and records, then
// returns its path and raw bytes.
func writeJournal(t *testing.T, dir, name, tag string, records ...CellRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	cp, err := CreateCheckpoint(path, tag)
	if err != nil {
		t.Fatalf("CreateCheckpoint: %v", err)
	}
	for _, rec := range records {
		if err := cp.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return path
}

// corruptLine flips a checksum hex digit on the given 1-based record
// line (the header is line 1, so record n is line n+1).
func corruptLine(t *testing.T, path string, line int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	if line-1 >= len(lines) {
		t.Fatalf("journal has %d lines, cannot corrupt line %d", len(lines), line)
	}
	s := lines[line-1]
	i := strings.Index(s, `"crc":"`)
	if i < 0 {
		t.Fatalf("line %d has no crc field: %s", line, s)
	}
	pos := i + len(`"crc":"`)
	flip := byte('0')
	if s[pos] == '0' {
		flip = 'f'
	}
	lines[line-1] = s[:pos] + string(flip) + s[pos+1:]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestInspectClean(t *testing.T) {
	dir := t.TempDir()
	tag := ShardTag("base-opts", ShardSpec{Index: 1, Count: 3, Name: "shard1"})
	path := writeJournal(t, dir, "shard1.ckpt", tag,
		CellRecord{Stage: StageProbe, Key: "ARL_Opteron"},
		CellRecord{Stage: StageCell, Key: "avus|32", Observed: map[string]float64{"ARL_Opteron": 1.5}},
	)
	info, err := Inspect(path)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Status != JournalClean || info.Records != 2 || info.Probes != 1 || info.Cells != 1 {
		t.Fatalf("Inspect = %+v, want clean with 1 probe + 1 cell", info)
	}
	if info.BaseTag != "base-opts" || !info.Sharded || info.Shard.Index != 1 || info.Shard.Count != 3 {
		t.Fatalf("Inspect shard fields = %+v", info)
	}
	if info.LastKey != StageCell+" avus|32" {
		t.Fatalf("LastKey = %q", info.LastKey)
	}
}

func TestInspectTornTailVsCorrupt(t *testing.T) {
	dir := t.TempDir()
	recs := []CellRecord{
		{Stage: StageProbe, Key: "a"},
		{Stage: StageProbe, Key: "b"},
		{Stage: StageProbe, Key: "c"},
	}

	torn := writeJournal(t, dir, "torn.ckpt", "tag", recs...)
	corruptLine(t, torn, 4) // last record: nothing decodable after
	info, err := Inspect(torn)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != JournalTornTail || info.Records != 2 || info.BadLine != 4 || info.Stranded != 0 {
		t.Fatalf("torn-tail Inspect = %+v", info)
	}

	corrupt := writeJournal(t, dir, "corrupt.ckpt", "tag", recs...)
	corruptLine(t, corrupt, 3) // middle record: one intact record stranded
	info, err = Inspect(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != JournalCorrupt || info.Records != 1 || info.BadLine != 3 || info.Stranded != 1 {
		t.Fatalf("corrupt Inspect = %+v", info)
	}

	// Inspect must not have rewritten either file.
	raw, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimRight(string(raw), "\n"), "\n")); got != 4 {
		t.Fatalf("Inspect rewrote the journal: %d lines left, want 4", got)
	}
}

func TestInspectNotACheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noise.ckpt")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Inspect(path); err == nil || !strings.Contains(err.Error(), "not a checkpoint") {
		t.Fatalf("Inspect on junk = %v, want not-a-checkpoint error", err)
	}
}

func TestMergeCheckpointsFirstRecordWins(t *testing.T) {
	dir := t.TempDir()
	base := "opts"
	writeJournal(t, dir, "shard0.ckpt", ShardTag(base, ShardSpec{0, 2, "shard0"}),
		CellRecord{Stage: StageProbe, Key: "a", Observed: map[string]float64{"v": 1}},
		CellRecord{Stage: StageCell, Key: "x|8"},
	)
	// A stealer journal covering the same slice: duplicate records plus
	// one the victim never reached.
	writeJournal(t, dir, "shard0-steal.ckpt", ShardTag(base, ShardSpec{0, 2, "shard0"}),
		CellRecord{Stage: StageProbe, Key: "a", Observed: map[string]float64{"v": 1}},
		CellRecord{Stage: StageCell, Key: "y|8"},
	)
	writeJournal(t, dir, "shard1.ckpt", ShardTag(base, ShardSpec{1, 2, "shard1"}),
		CellRecord{Stage: StageProbe, Key: "b"},
	)
	m, err := MergeCheckpoints(dir, base)
	if err != nil {
		t.Fatalf("MergeCheckpoints: %v", err)
	}
	if len(m.Records) != 4 {
		t.Fatalf("merged %d records, want 4 (dedup): %+v", len(m.Records), m.Records)
	}
	if m.ShardCount != 2 || len(m.MissingShards) != 0 || len(m.Quarantined) != 0 {
		t.Fatalf("merge shape = count %d, missing %v, quarantined %v", m.ShardCount, m.MissingShards, m.Quarantined)
	}
	if len(m.Journals) != 3 {
		t.Fatalf("accepted %d journals, want 3", len(m.Journals))
	}
}

func TestMergeCheckpointsQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	base := "opts"
	writeJournal(t, dir, "shard0.ckpt", ShardTag(base, ShardSpec{0, 2, "shard0"}),
		CellRecord{Stage: StageProbe, Key: "a"},
	)
	bad := writeJournal(t, dir, "shard1.ckpt", ShardTag(base, ShardSpec{1, 2, "shard1"}),
		CellRecord{Stage: StageProbe, Key: "b"},
		CellRecord{Stage: StageProbe, Key: "c"},
		CellRecord{Stage: StageProbe, Key: "d"},
	)
	corruptLine(t, bad, 3) // mid-file: stranded records beyond
	m, err := MergeCheckpoints(dir, base)
	if err != nil {
		t.Fatalf("MergeCheckpoints: %v", err)
	}
	if len(m.Quarantined) != 1 || m.Quarantined[0].Path != bad {
		t.Fatalf("quarantined = %+v, want %s", m.Quarantined, bad)
	}
	if !strings.Contains(m.Quarantined[0].Reason, "corrupt") {
		t.Fatalf("quarantine reason = %q", m.Quarantined[0].Reason)
	}
	if len(m.MissingShards) != 1 || m.MissingShards[0] != 1 {
		t.Fatalf("missing shards = %v, want [1]", m.MissingShards)
	}
	if len(m.Records) != 1 {
		t.Fatalf("merged %d records, want only shard0's", len(m.Records))
	}
}

func TestMergeCheckpointsTornTailAccepted(t *testing.T) {
	dir := t.TempDir()
	base := "opts"
	torn := writeJournal(t, dir, "shard0.ckpt", ShardTag(base, ShardSpec{0, 2, "shard0"}),
		CellRecord{Stage: StageProbe, Key: "a"},
		CellRecord{Stage: StageProbe, Key: "b"},
	)
	corruptLine(t, torn, 3) // tail record only: torn, not corrupt
	writeJournal(t, dir, "shard1.ckpt", ShardTag(base, ShardSpec{1, 2, "shard1"}),
		CellRecord{Stage: StageProbe, Key: "c"},
	)
	m, err := MergeCheckpoints(dir, base)
	if err != nil {
		t.Fatalf("MergeCheckpoints: %v", err)
	}
	if len(m.Quarantined) != 0 {
		t.Fatalf("torn tail was quarantined: %+v", m.Quarantined)
	}
	if len(m.Records) != 2 {
		t.Fatalf("merged %d records, want good prefix (1) + shard1 (1)", len(m.Records))
	}
}

func TestMergeCheckpointsRejectsMixedOptions(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, "shard0.ckpt", ShardTag("opts;faults=planA", ShardSpec{0, 2, "shard0"}),
		CellRecord{Stage: StageProbe, Key: "a"},
	)
	writeJournal(t, dir, "shard1.ckpt", ShardTag("opts;faults=planB", ShardSpec{1, 2, "shard1"}),
		CellRecord{Stage: StageProbe, Key: "b"},
	)
	_, err := MergeCheckpoints(dir, "opts;faults=planA")
	if err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("mixed-options merge = %v, want different-options rejection", err)
	}
}

func TestMergeCheckpointsRejectsMixedShardCounts(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, "shard0.ckpt", ShardTag("opts", ShardSpec{0, 2, "shard0"}),
		CellRecord{Stage: StageProbe, Key: "a"},
	)
	writeJournal(t, dir, "shard1.ckpt", ShardTag("opts", ShardSpec{1, 3, "shard1"}),
		CellRecord{Stage: StageProbe, Key: "b"},
	)
	if _, err := MergeCheckpoints(dir, "opts"); err == nil || !strings.Contains(err.Error(), "slices the grid") {
		t.Fatalf("mixed-count merge = %v, want slice-mismatch rejection", err)
	}
}

func TestMergeCheckpointsEmptyDir(t *testing.T) {
	if _, err := MergeCheckpoints(t.TempDir(), "opts"); err == nil || !strings.Contains(err.Error(), "no shard journals") {
		t.Fatalf("empty-dir merge = %v", err)
	}
}

func TestSeedCheckpointMemoryOnly(t *testing.T) {
	cp, err := SeedCheckpoint("", "tag", []CellRecord{
		{Stage: StageProbe, Key: "a"},
		{Stage: StageProbe, Key: "a"}, // duplicate seed: first wins
		{Stage: StageCell, Key: "x|8", BaseSeconds: 2.5},
	})
	if err != nil {
		t.Fatalf("SeedCheckpoint: %v", err)
	}
	if cp.Len() != 2 || cp.Path() != "" {
		t.Fatalf("seeded len=%d path=%q", cp.Len(), cp.Path())
	}
	if rec, ok := cp.Lookup(StageCell, "x|8"); !ok || rec.BaseSeconds != 2.5 {
		t.Fatalf("Lookup seeded cell = %+v, %t", rec, ok)
	}
	if err := cp.Append(CellRecord{Stage: StageCell, Key: "y|8"}); err != nil {
		t.Fatalf("memory-only Append: %v", err)
	}
	if cp.Len() != 3 {
		t.Fatalf("len after append = %d", cp.Len())
	}
}

func TestSeedCheckpointPersisted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "merged.ckpt")
	cp, err := SeedCheckpoint(path, "tag", []CellRecord{{Stage: StageProbe, Key: "a"}})
	if err != nil {
		t.Fatalf("SeedCheckpoint: %v", err)
	}
	if err := cp.Append(CellRecord{Stage: StageCell, Key: "x|8"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	re, err := OpenCheckpoint(path, "tag")
	if err != nil {
		t.Fatalf("OpenCheckpoint on seeded journal: %v", err)
	}
	if re.Len() != 2 || re.Dropped() != 0 {
		t.Fatalf("reopened len=%d dropped=%d", re.Len(), re.Dropped())
	}
}
