package hpcmetrics_test

import (
	"flag"
	"os"
	"sync"
	"testing"

	"hpcmetrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current study output")

// TestSharedStudyConcurrent locks in the sync.Once contract of
// study.Shared: any number of concurrent callers get the same *Results
// (and the study runs once). Run under -race this also checks that the
// study's internals do not data-race with themselves through the shared
// cache.
func TestSharedStudyConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("full study skipped in -short mode; internal/study's slice tests cover the parallel harness")
	}
	const callers = 8
	var (
		wg      sync.WaitGroup
		results [callers]*hpcmetrics.StudyResults
		errs    [callers]error
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = hpcmetrics.SharedStudy()
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("caller %d: nil results", i)
		}
		if results[i] != results[0] {
			t.Errorf("caller %d received a different *Results than caller 0; Shared must cache one instance", i)
		}
	}
	if n := results[0].ObservationCount(); n == 0 {
		t.Error("shared study produced no observations")
	}
}

// TestTable4CSVGolden pins the paper's headline error table: a refactor of
// the report, study, or simulation layers that silently changes these
// numbers fails here. Regenerate deliberately with: go test -run Golden -update .
func TestTable4CSVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full study skipped in -short mode")
	}
	res, err := hpcmetrics.SharedStudy()
	if err != nil {
		t.Fatal(err)
	}
	got := hpcmetrics.Table4(res).CSV()
	const path = "testdata/table4.golden.csv"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("Table4 CSV drifted from golden (rerun with -update only if the change is intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
