module hpcmetrics

go 1.22
