// Package hpcmetrics reproduces the SC'05 study "How Well Can Simple
// Metrics Represent the Performance of HPC Applications?" (Carrington,
// Laurenzano, Snavely, Campbell, Davis) as a runnable system.
//
// The library provides, end to end:
//
//   - machine models of the study's eleven HPC systems (and a way to
//     define new ones), with cache-hierarchy, processor-core, and
//     interconnect simulators standing in for the hardware;
//   - the synthetic probes — HPL, STREAM, GUPS, the MAPS memory sweep,
//     ENHANCED MAPS, and NETBENCH — executed against those machine models;
//   - the five TI-05 application skeletons (AVUS standard/large, HYCOM,
//     OVERFLOW2, RFCTH) and a ground-truth executor that produces
//     observed times-to-solution;
//   - the tracing tool chain (stride-classifying tracer, MPI event
//     profile, static dependency analyzer) and the MetaSim-style
//     convolver — the paper's core contribution;
//   - the nine prediction metrics of the paper's Table 3, the IDC-style
//     balanced rating, and the full study harness that regenerates every
//     table and figure of the evaluation section.
//
// Quick start:
//
//	cfg := hpcmetrics.Machine(hpcmetrics.ARLOpteron)
//	pr, _ := hpcmetrics.MeasureProbes(cfg)
//	fmt.Printf("STREAM: %.2f GB/s\n", pr.StreamBytesPerSec/1e9)
//
//	res, _ := hpcmetrics.RunStudy(os.Stderr)
//	fmt.Print(hpcmetrics.Table4(res))
//
// The heavy lifting lives in the internal packages (machine, memsim,
// cpusim, netsim, access, trace, apps, simexec, probes, convolve,
// metrics, stats, study, report); this package re-exports the surface a
// downstream user needs.
package hpcmetrics

import (
	"io"

	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/convolve"
	"hpcmetrics/internal/faults"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/obs"
	"hpcmetrics/internal/predictor"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/report"
	"hpcmetrics/internal/simexec"
	"hpcmetrics/internal/study"
	"hpcmetrics/internal/trace"
	"hpcmetrics/internal/workload"
)

// Machine configuration types and the study presets.
type (
	// MachineConfig describes one HPC system.
	MachineConfig = machine.Config
	// CacheLevel describes one level of a machine's cache hierarchy.
	CacheLevel = machine.CacheLevel
	// Network describes a machine's interconnect.
	Network = machine.Network
)

// Preset system names (paper Tables 1, 2, and 5).
const (
	ERDCOrigin3800 = machine.ERDCOrigin3800
	MHPCCPower3    = machine.MHPCCPower3
	NAVOPower3     = machine.NAVOPower3
	ASCSC45        = machine.ASCSC45
	MHPCC690       = machine.MHPCC690
	ARL690         = machine.ARL690
	ARLXeon        = machine.ARLXeon
	ARLAltix       = machine.ARLAltix
	NAVO655        = machine.NAVO655
	ARLOpteron     = machine.ARLOpteron
	BaseSystem     = machine.BaseSystemName
)

// Machine returns a fresh copy of a preset system; it panics on unknown
// names (use machine.Preset via LookupMachine for error handling).
func Machine(name string) *MachineConfig { return machine.MustPreset(name) }

// LookupMachine returns a preset system or an error.
func LookupMachine(name string) (*MachineConfig, error) { return machine.Preset(name) }

// MachineNames lists all preset systems.
func MachineNames() []string { return machine.Names() }

// StudyTargets returns the ten prediction-target systems in paper order.
func StudyTargets() []*MachineConfig { return machine.StudyTargets() }

// BaseMachine returns the NAVO p690 base system.
func BaseMachine() *MachineConfig { return machine.Base() }

// Probe results and the probe suite.
type (
	// ProbeResults bundles every synthetic benchmark result for a machine.
	ProbeResults = probes.Results
	// ProbeCurve is a rate-versus-working-set curve (MAPS).
	ProbeCurve = probes.Curve
)

// MeasureProbes runs HPL, STREAM, GUPS, MAPS, ENHANCED MAPS, and NETBENCH
// on the machine.
func MeasureProbes(cfg *MachineConfig) (*ProbeResults, error) { return probes.Measure(cfg) }

// Applications and execution.
type (
	// App is an application instantiated at a processor count.
	App = workload.App
	// AppTestCase is one of the study's five test cases.
	AppTestCase = apps.TestCase
	// RunResult is a ground-truth execution result.
	RunResult = simexec.Result
)

// TestCases returns the five TI-05 test cases in the paper's order.
func TestCases() []AppTestCase { return apps.Registry() }

// LookupTestCase finds a test case by name ("avus", "hycom", ...) and case
// ("standard", "large"; empty matches the first).
func LookupTestCase(name, caseName string) (AppTestCase, error) { return apps.Lookup(name, caseName) }

// ErrJobTooLarge reports that an application instance needs more
// processors than the target machine has. The study records such cells
// as missing — test with errors.Is to distinguish "no observation" from
// a real execution failure.
var ErrJobTooLarge = simexec.ErrTooLarge

// Execute runs an application on a machine at full model fidelity,
// producing the observed time-to-solution.
func Execute(cfg *MachineConfig, app *App) (*RunResult, error) { return simexec.Execute(cfg, app) }

// Tracing and prediction.
type (
	// Trace is an application signature gathered on a base system.
	Trace = trace.Trace
	// Metric is one of the paper's nine prediction metrics.
	Metric = metrics.Metric
	// MetricContext carries what a prediction needs.
	MetricContext = metrics.Context
	// ConvolveOptions selects the convolver's transfer-function terms.
	ConvolveOptions = convolve.Options
	// Prediction is a convolver time estimate.
	Prediction = convolve.Prediction
)

// CollectTrace traces an application on the base system (MetaSim Tracer,
// MPIDTRACE, and static dependency analysis analogs).
func CollectTrace(base *MachineConfig, app *App) (*Trace, error) { return trace.Collect(base, app) }

// Metrics returns the nine metrics of the paper's Table 3.
func Metrics() []Metric { return metrics.All() }

// MetricByID returns one metric by its Table 3 number (1-9).
func MetricByID(id int) (Metric, error) { return metrics.ByID(id) }

// Convolve predicts an absolute runtime from a trace and probe results
// (the MetaSim Convolver analog).
func Convolve(tr *Trace, pr *ProbeResults, opts ConvolveOptions) (*Prediction, error) {
	return convolve.Predict(tr, pr, opts)
}

// SignedError is the paper's Equation 2: percent deviation of a prediction
// from the actual runtime.
func SignedError(predicted, actual float64) float64 { return metrics.SignedError(predicted, actual) }

// The full study.
type (
	// StudyResults holds everything the full reproduction produced.
	StudyResults = study.Results
	// StudyKey identifies one (application, case, CPU count) cell.
	StudyKey = study.Key
	// StudyOptions configures a study run (slices, workers, ablations,
	// observability).
	StudyOptions = study.Options
	// StudySkip records why one (cell, system) observation is missing.
	StudySkip = study.Skip
	// ReportTable is a rendered table (String() for terminals, CSV()).
	ReportTable = report.Table
)

// Observability: the span tracer, metrics registry, and run manifest
// that make a study run auditable (see internal/obs).
type (
	// Obs bundles a tracer and a metrics registry for a run.
	Obs = obs.Obs
	// SpanRecord is one finished span as exported to JSONL.
	SpanRecord = obs.SpanRecord
	// PhaseStat is one row of the flame-style per-phase summary.
	PhaseStat = obs.PhaseStat
	// RunManifest attributes a run: toolchain, host, seed, options.
	RunManifest = obs.Manifest
)

// NewObs returns an observability bundle to pass in StudyOptions.Obs.
func NewObs() *Obs { return obs.New() }

// Serving: the stateless prediction engine and the memoizing, coalescing
// Predictor behind cmd/predict and the predictd server (see
// internal/predictor).
type (
	// PredictEngine is the stateless compute core shared by the study
	// harness, the predict CLI, and the predictd server.
	PredictEngine = predictor.Engine
	// Predictor answers prediction requests through the engine with
	// exact-hit memoization and request coalescing.
	Predictor = predictor.Predictor
	// PredictorConfig tunes a Predictor.
	PredictorConfig = predictor.Config
	// PredictRequest names one prediction cell.
	PredictRequest = predictor.Request
	// PredictResult is one answered prediction.
	PredictResult = predictor.Result
	// RankRequest asks for machines ordered fastest-first for one cell.
	RankRequest = predictor.RankRequest
	// RankResult is a rank answer, fastest machine first.
	RankResult = predictor.Ranking
	// PredictorCacheStat is one memoization layer's live view: keyspace
	// size plus hit/miss/coalesce traffic (Predictor.CacheStats).
	PredictorCacheStat = predictor.CacheStat
)

// ErrBadPredictRequest marks request-validation failures from the
// Predictor — unknown application, case, machine, or metric, or an
// unusable processor count. Test with errors.Is.
var ErrBadPredictRequest = predictor.ErrBadRequest

// NewPredictor returns a Predictor with empty caches, anchored to the
// study's base system.
func NewPredictor(cfg PredictorConfig) *Predictor { return predictor.New(cfg) }

// Robustness: the deterministic fault injector and the retry/checkpoint
// controls that let a study survive — and be tested under — transient
// failures, stalls, and crashes (see internal/faults, internal/retry,
// and StudyOptions.CellTimeout/MaxAttempts/CheckpointPath/Resume).
type (
	// FaultInjector arms deterministic faults at the pipeline's named
	// injection points; pass it in StudyOptions.Faults.
	FaultInjector = faults.Injector
	// FaultRule arms one fault kind at one injection point.
	FaultRule = faults.Rule
	// FaultKind is a class of injected fault.
	FaultKind = faults.Kind
)

// Fault kinds: a healing failure, a context-aware latency stall, and a
// failure no retry fixes.
const (
	FaultTransient = faults.Transient
	FaultStall     = faults.Stall
	FaultPermanent = faults.Permanent
)

// Injected-fault sentinels: every injected failure wraps one of these,
// so errors.Is can tell chaos from a real model error.
var (
	ErrInjectedTransient = faults.ErrTransient
	ErrInjectedPermanent = faults.ErrPermanent
)

// NewFaultInjector builds a fault injector from a jitter seed and a rule
// set; an empty rule set never fires.
func NewFaultInjector(seed uint64, rules ...FaultRule) *FaultInjector {
	return faults.New(seed, rules...)
}

// ParseFaultRules parses the -faults CLI grammar: comma-separated
// "kind:point:rate[:burst[:stall[:match]]]" rules.
func ParseFaultRules(spec string) ([]FaultRule, error) { return faults.ParseRules(spec) }

// PhaseTable renders the per-phase self/total time table of a traced run.
func PhaseTable(stats []PhaseStat) *ReportTable { return report.PhaseTable(stats) }

// SkipTable renders the appendix-style skipped-observation report with
// reasons (job-too-large vs. error vs. timeout) and attempt counts.
func SkipTable(res *StudyResults) *ReportTable { return report.SkipTable(res) }

// RunStudy executes the full reproduction: probes all systems, observes
// all 150 cells, traces on the base system, applies the nine metrics and
// the balanced rating. Progress lines go to w when non-nil. Expect on the
// order of a minute of CPU time.
func RunStudy(w io.Writer) (*StudyResults, error) {
	return study.Run(study.Options{Progress: w})
}

// RunStudyWithOptions executes the study with full control over slices,
// worker count, ablations, and observability.
func RunStudyWithOptions(opts StudyOptions) (*StudyResults, error) {
	return study.Run(opts)
}

// SharedStudy runs the study once per process and caches the result.
func SharedStudy() (*StudyResults, error) { return study.Shared() }

// Table4 renders the paper's headline error table.
func Table4(res *StudyResults) *ReportTable { return report.Table4(res) }

// Table5 renders the per-system error table.
func Table5(res *StudyResults) *ReportTable { return report.Table5(res) }

// FigureTable renders one application's error assessment (Figures 3-7).
func FigureTable(res *StudyResults, appID string) (*ReportTable, error) {
	fs, err := report.Figure(res, appID)
	if err != nil {
		return nil, err
	}
	return fs.Table(), nil
}

// ObservedTable renders an application's observed times (Appendix 6-10).
func ObservedTable(res *StudyResults, appID string) (*ReportTable, error) {
	return report.ObservedTable(res, appID)
}

// BalancedTable renders the balanced-rating side experiment.
func BalancedTable(res *StudyResults) *ReportTable { return report.BalancedTable(res) }

// ProbeTable summarizes the probe suite across all study machines.
func ProbeTable(res *StudyResults) *ReportTable { return report.ProbeTable(res) }

// Ranking orders the target systems best-first by observed application
// performance relative to the base system.
func Ranking(res *StudyResults) []string { return report.Ranking(res) }

// CorrelationTable renders prediction-vs-observed correlation per metric
// (Pearson and Spearman), the "correlation of each estimator to true
// performance" framing of the paper's introduction.
func CorrelationTable(res *StudyResults) (*ReportTable, error) {
	return report.CorrelationTable(res)
}
