// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Each benchmark prints its rows once (so
// `go test -bench=. -benchmem` reproduces the paper's artifacts) and then
// times the computation that produces them. The full study runs once per
// process and is shared by all benchmarks.
package hpcmetrics_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"hpcmetrics"
	"hpcmetrics/internal/apps"
	"hpcmetrics/internal/convolve"
	"hpcmetrics/internal/machine"
	"hpcmetrics/internal/metrics"
	"hpcmetrics/internal/probes"
	"hpcmetrics/internal/report"
	"hpcmetrics/internal/simexec"
	"hpcmetrics/internal/study"
	"hpcmetrics/internal/trace"
)

var printOnce sync.Map

// printTable emits a table once per process, keyed by its title.
func printTable(tab *report.Table) {
	if _, done := printOnce.LoadOrStore(tab.Title, true); !done {
		fmt.Fprintln(os.Stdout)
		fmt.Fprintln(os.Stdout, tab.String())
	}
}

func shared(b *testing.B) *study.Results {
	b.Helper()
	res, err := study.Shared()
	if err != nil {
		b.Fatalf("study: %v", err)
	}
	return res
}

// BenchmarkFigure1MAPSCurves regenerates the paper's Figure 1: unit-stride
// memory bandwidth versus working-set size for three target systems. The
// timed unit is one full MAPS sweep.
func BenchmarkFigure1MAPSCurves(b *testing.B) {
	res := shared(b)
	printTable(report.MAPSCurveTable([]*probes.Results{
		res.Probes[machine.NAVO655],
		res.Probes[machine.ARLAltix],
		res.Probes[machine.ARLOpteron],
	}))
	cfg := machine.MustPreset(machine.ARLOpteron)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probes.MAPS(cfg, probes.MAPSUnitStride, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4MetricErrors regenerates the paper's Table 4 (and the
// data behind Figure 2, its graphical form). The timed unit is the error
// aggregation over all 9 x ~150 predictions.
func BenchmarkTable4MetricErrors(b *testing.B) {
	res := shared(b)
	printTable(report.Table4(res))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range metrics.All() {
			_ = res.MetricSummary(m.ID)
		}
	}
}

// BenchmarkBalancedRating regenerates the Section 4 side experiment:
// fixed-weight and regression-optimized IDC-style balanced ratings. The
// timed unit is one full weight-grid optimization over the study's
// observations.
func BenchmarkBalancedRating(b *testing.B) {
	res := shared(b)
	printTable(report.BalancedTable(res))
	pool := make([]*probes.Results, 0, len(res.TargetNames))
	for _, name := range res.TargetNames {
		pool = append(pool, res.Probes[name])
	}
	var obs []metrics.RatingObservation
	basePr := res.Probes[res.BaseName]
	for _, key := range res.Cells {
		for _, name := range res.TargetNames {
			if actual, ok := res.Observed[key][name]; ok {
				obs = append(obs, metrics.RatingObservation{
					Base: basePr, Target: res.Probes[name],
					BaseSeconds: res.BaseTimes[key], ActualSeconds: actual,
				})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := metrics.OptimizeRating(pool, obs, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5SystemErrors regenerates the paper's Table 5: per-system
// average absolute error for every metric.
func BenchmarkTable5SystemErrors(b *testing.B) {
	res := shared(b)
	printTable(report.Table5(res))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range res.TargetNames {
			for id := 1; id <= 9; id++ {
				_ = res.SystemSummary(name, id)
			}
		}
	}
}

// benchFigure regenerates one of the paper's per-application error figures.
func benchFigure(b *testing.B, appID string) {
	res := shared(b)
	fs, err := report.Figure(res, appID)
	if err != nil {
		b.Fatal(err)
	}
	printTable(fs.Table())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Figure(res, appID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3AVUSStandard regenerates Figure 3.
func BenchmarkFigure3AVUSStandard(b *testing.B) { benchFigure(b, "avus-standard") }

// BenchmarkFigure4AVUSLarge regenerates Figure 4.
func BenchmarkFigure4AVUSLarge(b *testing.B) { benchFigure(b, "avus-large") }

// BenchmarkFigure5HYCOM regenerates Figure 5.
func BenchmarkFigure5HYCOM(b *testing.B) { benchFigure(b, "hycom-standard") }

// BenchmarkFigure6OVERFLOW2 regenerates Figure 6.
func BenchmarkFigure6OVERFLOW2(b *testing.B) { benchFigure(b, "overflow2-standard") }

// BenchmarkFigure7RFCTH regenerates Figure 7.
func BenchmarkFigure7RFCTH(b *testing.B) { benchFigure(b, "rfcth-standard") }

// BenchmarkAppendixObservedTimes regenerates the appendix tables 6-10
// (observed times-to-solution with the paper-style blank cells). The
// timed unit is one ground-truth application execution.
func BenchmarkAppendixObservedTimes(b *testing.B) {
	res := shared(b)
	for _, tc := range apps.Registry() {
		tab, err := report.ObservedTable(res, tc.ID())
		if err != nil {
			b.Fatal(err)
		}
		printTable(tab)
	}
	tc, err := apps.Lookup("rfcth", "")
	if err != nil {
		b.Fatal(err)
	}
	app, err := tc.Instance(64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.MustPreset(machine.NAVO655)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simexec.Execute(cfg, app); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benchmarks: the pipeline stages the study is built from ---

// BenchmarkProbeSuite times the full synthetic benchmark suite on one
// machine (the per-target cost of deploying the methodology).
func BenchmarkProbeSuite(b *testing.B) {
	cfg := machine.MustPreset(machine.ASCSC45)
	for i := 0; i < b.N; i++ {
		if _, err := probes.Measure(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracer times tracing one application on the base system (the
// paper's "30x slowdown" step, paid once per application).
func BenchmarkTracer(b *testing.B) {
	base := machine.Base()
	tc, err := apps.Lookup("hycom", "")
	if err != nil {
		b.Fatal(err)
	}
	app, err := tc.Instance(96)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Collect(base, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolver times one convolver prediction — the step that runs
// per (application, target) pair and must be cheap for the methodology to
// beat running the applications everywhere.
func BenchmarkConvolver(b *testing.B) {
	res := shared(b)
	tr := res.Traces[study.Key{App: "avus", Case: "standard", Procs: 64}]
	pr := res.Probes[machine.ARLOpteron]
	opts := convolve.Options{Memory: convolve.MemMAPSDependency, Network: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := convolve.Predict(tr, pr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictAllMetrics times applying all nine metrics to one
// (application, target) cell.
func BenchmarkPredictAllMetrics(b *testing.B) {
	res := shared(b)
	key := study.Key{App: "overflow2", Case: "standard", Procs: 48}
	ctx := metrics.Context{
		Trace:       res.Traces[key],
		Base:        res.Probes[res.BaseName],
		Target:      res.Probes[machine.ARLAltix],
		BaseSeconds: res.BaseTimes[key],
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range metrics.All() {
			if _, err := m.Predict(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEndToEndPrediction times the paper's complete per-target
// workflow from the public API: probe the target, then predict one traced
// application with the best metric. (Tracing and the base run are
// excluded — they are one-time, per-application costs.)
func BenchmarkEndToEndPrediction(b *testing.B) {
	res := shared(b)
	key := study.Key{App: "hycom", Case: "standard", Procs: 96}
	m, err := hpcmetrics.MetricByID(9)
	if err != nil {
		b.Fatal(err)
	}
	target := machine.MustPreset(machine.ARLXeon)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := hpcmetrics.MeasureProbes(target)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Predict(metrics.Context{
			Trace: res.Traces[key], Base: res.Probes[res.BaseName],
			Target: pr, BaseSeconds: res.BaseTimes[key],
		}); err != nil {
			b.Fatal(err)
		}
	}
}
